#include "obs/openmetrics.hpp"

#include <array>
#include <fstream>

namespace sdn::obs {

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Label-value escaping per the exposition format: backslash, double quote
/// and newline.
std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void Line(std::string& out, const std::string& series, std::int64_t value) {
  out += series;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out = "sdn_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += ValidNameChar(c) ? c : '_';
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot,
                              std::span<const MemorySeries> memory,
                              std::span<const AnomalyRecord> anomalies) {
  std::string out;
  out.reserve(4096);
  for (const MetricSample& s : snapshot.samples) {
    const std::string name = OpenMetricsName(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        // The registry convention keeps `_total` out of instrument names;
        // the exposition convention requires it on counter samples.
        out += "# TYPE " + name + " counter\n";
        Line(out, name + "_total", s.value);
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        Line(out, name, s.value);
        break;
      case MetricKind::kHistogram:
        // The snapshot carries count/sum/p50/p95, not the raw buckets —
        // exactly the shape of an exposition-format summary.
        out += "# TYPE " + name + " summary\n";
        Line(out, name + "{quantile=\"0.5\"}", s.p50);
        Line(out, name + "{quantile=\"0.95\"}", s.p95);
        Line(out, name + "_sum", s.sum);
        Line(out, name + "_count", s.count);
        break;
    }
  }
  if (!memory.empty()) {
    out += "# TYPE sdn_memory_bytes gauge\n";
    for (const MemorySeries& m : memory) {
      const std::string label = EscapeLabel(m.subsystem);
      Line(out,
           "sdn_memory_bytes{subsystem=\"" + label + "\",stat=\"current\"}",
           m.current_bytes);
      Line(out, "sdn_memory_bytes{subsystem=\"" + label + "\",stat=\"peak\"}",
           m.peak_bytes);
    }
  }
  if (!anomalies.empty()) {
    std::array<std::int64_t, kNumAnomalyRules> per_rule{};
    for (const AnomalyRecord& a : anomalies) {
      ++per_rule[static_cast<std::size_t>(a.rule)];
    }
    out += "# TYPE sdn_anomaly_records gauge\n";
    for (int r = 0; r < kNumAnomalyRules; ++r) {
      if (per_rule[static_cast<std::size_t>(r)] == 0) continue;
      Line(out,
           std::string("sdn_anomaly_records{rule=\"") +
               ToString(static_cast<AnomalyRule>(r)) + "\"}",
           per_rule[static_cast<std::size_t>(r)]);
    }
  }
  out += "# EOF\n";
  return out;
}

bool WriteOpenMetrics(const std::string& path, const MetricsSnapshot& snapshot,
                      std::span<const MemorySeries> memory,
                      std::span<const AnomalyRecord> anomalies) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << RenderOpenMetrics(snapshot, memory, anomalies);
  return static_cast<bool>(os);
}

}  // namespace sdn::obs
