// Anomaly engine: declarative trigger rules over rolling round signals.
//
// The flight recorder (obs/recorder.hpp) only helps if a human remembers to
// attach it and stare at the trace. The anomaly engine is the always-on
// counterpart: the engine feeds it one RoundSignals record per round (on the
// observation side of Step(), after the final clock read), it maintains
// rolling per-phase latency windows (obs/rolling_hist.hpp), and a small set
// of declarative rules fire typed AnomalyRecords when the run misbehaves:
//
//   rule                  | windowed signal          | trigger
//   ----------------------|--------------------------|--------------------------
//   kRoundTimeSpike       | rolling p99 of total_ns  | round > factor x p99 (and
//                         |                          | above an absolute floor)
//   kAuxLaneStall         | aux-lane Drain wait      | wait > aux_stall_ns
//   kMemoryJump           | per-gauge byte level     | step > factor x previous
//                         |                          | (and above a byte floor)
//   kCertRegression       | certified-T / bad window | certified-T drops, or the
//                         |                          | first bad window appears
//   kRecorderDropOnset    | recorder drop counter    | drops start (ring wrapped)
//
// Records are bounded (max_records) and per-rule cooldowns stop a stuck run
// from flooding the list. When a FlightRecorder is attached, each firing
// also writes a bounded dump — `anomaly-<round>-<rule>.jsonl` (the
// recorder's retained window, which by flight-recorder semantics brackets
// the trigger) plus a sibling `.manifest.json` naming the rule, round,
// observed value and threshold — up to max_dumps per run.
//
// Observation-never-feeds-back: the engine consults nothing here; RunStats
// minus the anomaly/metrics fields is bit-identical with the plane on or
// off (test_determinism pins it). All registry instruments the engine
// creates for anomalies are flagged non-deterministic — firing depends on
// wall clock.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/rolling_hist.hpp"

namespace sdn::obs {

class FlightRecorder;
class MetricsRegistry;
class Counter;

enum class AnomalyRule : std::uint8_t {
  kRoundTimeSpike = 0,
  kAuxLaneStall = 1,
  kMemoryJump = 2,
  kCertRegression = 3,
  kRecorderDropOnset = 4,
};
inline constexpr int kNumAnomalyRules = 5;

/// Stable lowercase snake_case name (metric suffixes, dump file names).
const char* ToString(AnomalyRule rule);

/// One rule firing. `signal` names what crossed the threshold and must
/// point at a string with static storage duration (same contract as
/// Event::label — the record never owns or frees it).
struct AnomalyRecord {
  AnomalyRule rule = AnomalyRule::kRoundTimeSpike;
  std::int64_t round = 0;
  std::int64_t value = 0;      ///< observed signal value
  std::int64_t threshold = 0;  ///< armed threshold it crossed
  const char* signal = "";

  friend bool operator==(const AnomalyRecord&, const AnomalyRecord&) = default;
};

struct AnomalyOptions {
  /// Rolling window, in rounds, for every per-phase latency histogram.
  int window = 64;
  /// kRoundTimeSpike arms only after this many rounds seeded the window
  /// (a spike vs an empty baseline is meaningless).
  int min_samples = 8;
  /// kRoundTimeSpike: round total_ns > spike_factor x rolling p99 ...
  double spike_factor = 8.0;
  /// ... and > this absolute floor, so microsecond-scale jitter in fast
  /// runs never pages anyone (1 ms default).
  std::int64_t spike_floor_ns = 1'000'000;
  /// kAuxLaneStall: a lane Drain wait above this fires (250 ms default —
  /// a healthy prefetch join is microseconds).
  std::int64_t aux_stall_ns = 250'000'000;
  /// kMemoryJump: gauge step > memory_jump_factor x previous level ...
  double memory_jump_factor = 0.5;
  /// ... and > this many bytes (1 MiB default), so tiny-run gauges
  /// rounding up a chunk don't fire.
  std::int64_t memory_jump_floor_bytes = std::int64_t{1} << 20;
  /// Rounds a rule stays silent after firing (flood control).
  int cooldown_rounds = 64;
  /// Bound on stored AnomalyRecords (counters keep counting past it).
  int max_records = 64;
  /// Bound on flight-recorder dumps written per run.
  int max_dumps = 4;
  /// Directory for anomaly-<round>-<rule>.jsonl dumps.
  std::string dump_dir = ".";
};

/// One round's signals, sampled by the engine after the final clock read.
struct RoundSignals {
  std::int64_t round = 0;
  std::int64_t topology_ns = 0;
  std::int64_t validate_ns = 0;
  std::int64_t probe_ns = 0;
  std::int64_t send_ns = 0;
  std::int64_t deliver_ns = 0;
  std::int64_t total_ns = 0;
  /// Wait spent joining the auxiliary topology lane this round (0 when the
  /// prefetch overlap is off or the lane was already done).
  std::int64_t aux_wait_ns = 0;
  /// Checker state, when readable this round (synchronous checker only);
  /// -1 = not sampled — the rule skips, it never treats it as a drop.
  std::int64_t certified_T = -1;
  std::int64_t first_bad_window = -1;
  /// FlightRecorder::dropped() when a recorder is attached, else 0.
  std::uint64_t recorder_dropped = 0;
};

/// One memory gauge's level this round. `subsystem` must have static
/// storage duration (the engine passes its gauge-name literals).
struct MemorySample {
  const char* subsystem = "";
  std::int64_t bytes = 0;
};

class AnomalyEngine {
 public:
  /// Rolling-histogram tracks, one per phase signal.
  enum Track {
    kTopology = 0,
    kValidate,
    kProbe,
    kSend,
    kDeliver,
    kTotal,
    kAuxWait,
    kNumTracks,
  };

  /// `registry` (optional) receives non-deterministic counters —
  /// `anomalies_total` plus one `anomaly_<rule>` per rule — registered up
  /// front so exporters see a stable series even before anything fires.
  /// `recorder` (optional) enables dump-on-fire. Both must outlive the
  /// engine.
  AnomalyEngine(AnomalyOptions options, MetricsRegistry* registry,
                const FlightRecorder* recorder);

  AnomalyEngine(const AnomalyEngine&) = delete;
  AnomalyEngine& operator=(const AnomalyEngine&) = delete;

  /// Feeds one round: updates every rolling track, evaluates every rule.
  void Observe(const RoundSignals& signals,
               std::span<const MemorySample> memory);

  [[nodiscard]] const std::vector<AnomalyRecord>& records() const {
    return records_;
  }
  /// Total rule firings, including those past max_records.
  [[nodiscard]] std::int64_t total_fired() const { return total_fired_; }
  [[nodiscard]] int dumps_written() const { return dumps_written_; }
  [[nodiscard]] const RollingHist& hist(Track track) const {
    return hists_[static_cast<std::size_t>(track)];
  }
  [[nodiscard]] const AnomalyOptions& options() const { return options_; }

 private:
  void Fire(AnomalyRule rule, std::int64_t round, std::int64_t value,
            std::int64_t threshold, const char* signal);
  void WriteDump(const AnomalyRecord& record);

  struct GaugeTrack {
    const char* subsystem;
    std::int64_t last_bytes;
  };

  AnomalyOptions options_;
  MetricsRegistry* registry_;
  const FlightRecorder* recorder_;
  std::vector<RollingHist> hists_;     // kNumTracks, sized in the ctor
  std::vector<GaugeTrack> gauges_;     // previous per-subsystem levels
  std::vector<AnomalyRecord> records_;
  std::int64_t total_fired_ = 0;
  std::int64_t last_fired_round_[kNumAnomalyRules];  // cooldown state
  Counter* total_counter_ = nullptr;
  Counter* rule_counters_[kNumAnomalyRules] = {};
  std::int64_t last_certified_T_ = -1;
  bool bad_window_seen_ = false;
  std::uint64_t last_dropped_ = 0;
  int dumps_written_ = 0;
};

}  // namespace sdn::obs
