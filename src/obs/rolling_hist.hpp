// Rolling per-round latency histogram: the anomaly plane's windowed signal.
//
// obs::Histogram accumulates forever — right for end-of-run summaries, wrong
// for "is this round unusual *lately*": a spike detector comparing against a
// whole-run p99 goes blind after the first slow warmup rounds. RollingHist
// keeps the same 64 log2 buckets over only the last `window` observations,
// evicting the oldest value as each new one arrives, so quantiles always
// describe the recent regime.
//
// Footprint is fixed at construction: one `window`-slot ring of raw values
// plus the bucket array. Observe() is two bucket increments/decrements and a
// ring store — no allocation, no branches on the value distribution — cheap
// enough to feed from every engine round on the observation (post-clock)
// side of Step().
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace sdn::obs {

class RollingHist {
 public:
  static constexpr int kBuckets = 64;

  explicit RollingHist(int window = 64)
      : window_(window), ring_(static_cast<std::size_t>(window), 0) {
    SDN_CHECK(window >= 1);
  }

  /// Adds `value`, evicting the oldest observation once the window is full.
  void Observe(std::int64_t value) {
    const std::size_t slot = static_cast<std::size_t>(head_);
    if (filled_ == window_) {
      const std::int64_t old = ring_[slot];
      --buckets_[static_cast<std::size_t>(BucketOf(old))];
      sum_ -= old;
    } else {
      ++filled_;
    }
    ring_[slot] = value;
    ++buckets_[static_cast<std::size_t>(BucketOf(value))];
    sum_ += value;
    head_ = (head_ + 1) % window_;
    ++total_observed_;
  }

  /// Observations currently inside the window (<= window()).
  [[nodiscard]] std::int64_t count() const { return filled_; }
  [[nodiscard]] int window() const { return window_; }
  /// Lifetime Observe() calls, including evicted ones.
  [[nodiscard]] std::int64_t total_observed() const { return total_observed_; }
  /// Sum over the current window only.
  [[nodiscard]] std::int64_t sum() const { return sum_; }

  /// q in [0, 1] over the current window; geometric interpolation inside
  /// the log2 bucket (same shape as obs::Histogram::Quantile), clamped to
  /// the bucket's own value range. 0 when empty.
  [[nodiscard]] std::int64_t Quantile(double q) const {
    if (filled_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(filled_);
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::int64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
      if (in_bucket == 0) continue;
      if (static_cast<double>(seen + in_bucket) >= target) {
        if (b == 0) return 0;
        const double lo = std::ldexp(1.0, b - 1);
        const double frac = (target - static_cast<double>(seen)) /
                            static_cast<double>(in_bucket);
        const double est = lo * std::pow(2.0, frac);
        const auto v = static_cast<std::int64_t>(std::llround(est));
        // Clamp to the bucket's own span: [2^(b-1), 2^b - 1].
        const std::int64_t hi = (std::int64_t{1} << b) - 1;
        return std::clamp<std::int64_t>(v, static_cast<std::int64_t>(lo), hi);
      }
      seen += in_bucket;
    }
    return 0;  // unreachable: filled_ > 0 guarantees a bucket is hit
  }

 private:
  /// Bucket 0 holds exactly {0} (and clamped negatives); bucket b >= 1
  /// holds [2^(b-1), 2^b - 1] — identical to obs::Histogram's layout.
  static int BucketOf(std::int64_t value) {
    if (value <= 0) return 0;
    return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(value)));
  }

  int window_;
  int head_ = 0;                 // next ring slot to write
  std::int64_t filled_ = 0;      // observations currently in the window
  std::int64_t total_observed_ = 0;
  std::int64_t sum_ = 0;
  std::vector<std::int64_t> ring_;  // sized once in the constructor
  std::int64_t buckets_[kBuckets] = {};
};

}  // namespace sdn::obs
