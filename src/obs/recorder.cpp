#include "obs/recorder.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/manifest.hpp"
#include "util/check.hpp"

namespace sdn::obs {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kPhase:
      return "phase";
    case EventKind::kAlgoPhase:
      return "algo_phase";
    case EventKind::kProbeSpawn:
      return "probe_spawn";
    case EventKind::kProbeComplete:
      return "probe_complete";
    case EventKind::kSketchMerge:
      return "sketch_merge";
    case EventKind::kCheckerWindow:
      return "checker_window";
    case EventKind::kBandwidthHighWater:
      return "bandwidth_high_water";
    case EventKind::kBandwidthViolation:
      return "bandwidth_violation";
    case EventKind::kCounter:
      return "counter";
  }
  return "?";
}

FlightRecorder::FlightRecorder(int lanes, std::size_t lane_capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(lane_capacity) {
  SDN_CHECK(lanes >= 1 && lanes <= 256);
  SDN_CHECK(capacity_ >= 1);
  lanes_.resize(static_cast<std::size_t>(lanes));
  for (Lane& lane : lanes_) lane.ring.reserve(std::min(capacity_, {1024}));
}

void FlightRecorder::EmitLane(int lane, Event e) {
  if (lane < 0 || lane >= lanes()) lane = 0;
  Lane& l = lanes_[static_cast<std::size_t>(lane)];
  e.lane = static_cast<std::uint8_t>(lane);
  const std::size_t slot = static_cast<std::size_t>(l.emitted % capacity_);
  if (slot < l.ring.size()) {
    l.ring[slot] = e;  // wraparound: overwrite the oldest event
  } else {
    l.ring.push_back(e);
  }
  ++l.emitted;
}

std::uint64_t FlightRecorder::total_emitted() const {
  std::uint64_t total = 0;
  for (const Lane& l : lanes_) total += l.emitted;
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t dropped = 0;
  for (const Lane& l : lanes_) {
    if (l.emitted > capacity_) dropped += l.emitted - capacity_;
  }
  return dropped;
}

std::uint64_t FlightRecorder::dropped_lane(int lane) const {
  if (lane < 0 || lane >= lanes()) return 0;
  const Lane& l = lanes_[static_cast<std::size_t>(lane)];
  return l.emitted > capacity_ ? l.emitted - capacity_ : 0;
}

std::vector<Event> FlightRecorder::Drain() const {
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(total_emitted() - dropped()));
  for (const Lane& l : lanes_) {
    if (l.emitted <= capacity_) {
      out.insert(out.end(), l.ring.begin(), l.ring.end());
    } else {
      // The ring wrapped: chronological order starts at the write cursor.
      const std::size_t head = static_cast<std::size_t>(l.emitted % capacity_);
      out.insert(out.end(), l.ring.begin() + static_cast<std::ptrdiff_t>(head),
                 l.ring.end());
      out.insert(out.end(), l.ring.begin(),
                 l.ring.begin() + static_cast<std::ptrdiff_t>(head));
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.lane < b.lane;
  });
  return out;
}

void FlightRecorder::WriteJsonl(std::ostream& os,
                                const RunManifest* manifest) const {
  if (manifest != nullptr) {
    os << "{\"type\":\"manifest\",\"manifest\":" << manifest->ToJson()
       << "}\n";
  }
  os << "{\"type\":\"meta\",\"emitted\":" << total_emitted()
     << ",\"dropped\":" << dropped() << ",\"lanes\":" << lanes() << "}\n";
  for (const Event& e : Drain()) {
    os << "{\"type\":\"event\",\"kind\":\"" << ToString(e.kind)
       << "\",\"label\":\"" << e.label << "\",\"round\":" << e.round
       << ",\"lane\":" << static_cast<int>(e.lane) << ",\"t_ns\":" << e.t_ns;
    if (e.dur_ns != 0) os << ",\"dur_ns\":" << e.dur_ns;
    os << ",\"a\":" << e.a << ",\"b\":" << e.b;
    if (e.c != 0) os << ",\"c\":" << e.c;
    os << "}\n";
  }
}

bool FlightRecorder::WriteJsonl(const std::string& path,
                                const RunManifest* manifest) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteJsonl(os, manifest);
  return static_cast<bool>(os);
}

namespace {

/// Microsecond timestamp for the Chrome trace format (which uses `us`).
double Us(std::int64_t ns) { return static_cast<double>(ns) * 1e-3; }

void ChromeEvent(std::ostream& os, bool& first, const std::string& body) {
  os << (first ? "\n  " : ",\n  ") << body;
  first = false;
}

}  // namespace

void FlightRecorder::WriteChromeTrace(std::ostream& os,
                                      const RunManifest* manifest) const {
  const std::vector<Event> events = Drain();
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto meta = [&](int tid, const char* name) {
    std::string body = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,";
    body += "\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"";
    body += name;
    body += "\"}}";
    ChromeEvent(os, first, body);
  };
  ChromeEvent(os, first,
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
              "\"args\":{\"name\":\"sdn engine\"}}");
  meta(0, "engine phases");
  meta(1, "algorithm phase");
  meta(2, "flood probes");

  // Algorithm-phase spans: each transition lasts until the next (or the end
  // of the trace).
  std::int64_t trace_end = 0;
  for (const Event& e : events) {
    trace_end = std::max(trace_end, e.t_ns + e.dur_ns);
  }
  std::vector<const Event*> algo;
  for (const Event& e : events) {
    if (e.kind == EventKind::kAlgoPhase) algo.push_back(&e);
  }

  char buf[512];
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kPhase:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"engine\",\"ph\":\"X\","
                      "\"pid\":0,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,"
                      "\"args\":{\"round\":%lld}}",
                      e.label, Us(e.t_ns), Us(e.dur_ns),
                      static_cast<long long>(e.round));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kAlgoPhase:
        break;  // emitted as spans below
      case EventKind::kProbeSpawn:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"probe %lld spawn (src %lld)\","
                      "\"cat\":\"probe\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                      "\"tid\":2,\"ts\":%.3f,\"args\":{\"round\":%lld}}",
                      static_cast<long long>(e.a),
                      static_cast<long long>(e.b), Us(e.t_ns),
                      static_cast<long long>(e.round));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kProbeComplete:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"probe %lld complete (d=%lld)\","
                      "\"cat\":\"probe\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                      "\"tid\":2,\"ts\":%.3f,\"args\":{\"round\":%lld}}",
                      static_cast<long long>(e.a),
                      static_cast<long long>(e.b), Us(e.t_ns),
                      static_cast<long long>(e.round));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kSketchMerge:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"sketch merges\",\"ph\":\"C\",\"pid\":0,"
                      "\"ts\":%.3f,\"args\":{\"merges\":%lld}}",
                      Us(e.t_ns), static_cast<long long>(e.a));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kCheckerWindow:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"stable window edges\",\"ph\":\"C\","
                      "\"pid\":0,\"ts\":%.3f,"
                      "\"args\":{\"edges\":%lld,\"certified_T\":%lld}}",
                      Us(e.t_ns), static_cast<long long>(e.a),
                      static_cast<long long>(e.c));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kBandwidthHighWater:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"max message bits\",\"ph\":\"C\",\"pid\":0,"
                      "\"ts\":%.3f,\"args\":{\"bits\":%lld}}",
                      Us(e.t_ns), static_cast<long long>(e.a));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kBandwidthViolation:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"BANDWIDTH VIOLATION (node %lld, %lld "
                      "bits)\",\"cat\":\"engine\",\"ph\":\"i\",\"s\":\"g\","
                      "\"pid\":0,\"tid\":0,\"ts\":%.3f,"
                      "\"args\":{\"round\":%lld}}",
                      static_cast<long long>(e.b),
                      static_cast<long long>(e.a), Us(e.t_ns),
                      static_cast<long long>(e.round));
        ChromeEvent(os, first, buf);
        break;
      case EventKind::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"ts\":%.3f,"
                      "\"args\":{\"value\":%lld}}",
                      e.label, Us(e.t_ns), static_cast<long long>(e.a));
        ChromeEvent(os, first, buf);
        break;
    }
  }
  for (std::size_t i = 0; i < algo.size(); ++i) {
    const Event& e = *algo[i];
    const std::int64_t end =
        (i + 1 < algo.size()) ? algo[i + 1]->t_ns : trace_end;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s #%lld\",\"cat\":\"algo\",\"ph\":\"X\","
                  "\"pid\":0,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"round\":%lld,\"phase_index\":%lld}}",
                  e.label, static_cast<long long>(e.a), Us(e.t_ns),
                  Us(std::max<std::int64_t>(0, end - e.t_ns)),
                  static_cast<long long>(e.round),
                  static_cast<long long>(e.a));
    ChromeEvent(os, first, buf);
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": ";
  if (manifest != nullptr) {
    os << manifest->ToJson();
  } else {
    os << "{}";
  }
  os << "\n}\n";
}

bool FlightRecorder::WriteChromeTrace(const std::string& path,
                                      const RunManifest* manifest) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteChromeTrace(os, manifest);
  return static_cast<bool>(os);
}

}  // namespace sdn::obs
