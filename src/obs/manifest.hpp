// Run manifest: the provenance record stamped into every artifact.
//
// A bench table or trace file is only attributable if it records what
// produced it: the git SHA, the compiler and flags, the run configuration,
// the seed set, the host, and when. RunManifest collects those once per
// process (Collect()), lets harnesses add run-specific keys (Set), and
// serialises to JSON (BENCH_engine.json, trace `otherData`, *.manifest.json)
// or `# key=value` comment lines (results/*.csv preamble).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sdn::obs {

/// JSON string escaping for manifest values (quotes, backslashes, control
/// characters).
std::string JsonEscape(const std::string& s);

struct RunManifest {
  /// Ordered key-value pairs; later Set() of an existing key overwrites.
  std::vector<std::pair<std::string, std::string>> items;

  /// Environment provenance: library version, git SHA (SDN_GIT_SHA env
  /// override, else read from .git), compiler (__VERSION__), build type and
  /// optimisation level, hostname, UTC timestamp.
  static RunManifest Collect();

  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, long long value);
  [[nodiscard]] const std::string* Find(const std::string& key) const;

  /// Flat JSON object, keys in insertion order.
  [[nodiscard]] std::string ToJson() const;
  /// One `# key=value` line per item (CSV/TSV comment preamble).
  [[nodiscard]] std::vector<std::string> CommentLines() const;
  /// False (and nothing written) if the file cannot be opened.
  bool WriteJson(const std::string& path) const;
};

}  // namespace sdn::obs
