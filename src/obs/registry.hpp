// Metrics registry: named Counter / Gauge / Histogram instruments.
//
// The registry is the aggregate side of sdn::obs — where the flight recorder
// keeps the *sequence* of what happened, the registry keeps totals and
// distributions, snapshotted into RunStats at the end of a run and rendered
// by RunStats::OneLine and the bench tables.
//
// Determinism contract: instruments are created with a `deterministic` flag.
// Deterministic metrics (message counts, rounds, merges) must be
// bit-identical across thread counts and with tracing on/off; ns-valued
// metrics are registered non-deterministic and excluded from determinism
// comparisons (MetricsSnapshot::Deterministic()).
//
// Histograms are log2-bucketed: value v lands in bucket bit_width(v), so 64
// fixed buckets cover the full non-negative int64 range with no
// configuration. Quantile() interpolates geometrically inside a bucket,
// which is the right shape for latency-like data.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sdn::obs {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* ToString(MetricKind kind);

class Counter {
 public:
  void Add(std::int64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(std::int64_t value) { value_ = value; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(std::int64_t value);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  /// q in [0, 1]; geometric interpolation inside the log2 bucket. 0 when
  /// empty.
  [[nodiscard]] std::int64_t Quantile(double q) const;
  [[nodiscard]] const std::array<std::int64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// One instrument frozen at snapshot time. For counters/gauges only `value`
/// is meaningful; histograms carry the distribution summary.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// False for wall-clock-valued metrics: excluded from determinism
  /// comparisons (MetricsSnapshot::Deterministic).
  bool deterministic = true;
  std::int64_t value = 0;  // counter/gauge value; histogram count
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // registry insertion order

  [[nodiscard]] const MetricSample* Find(const std::string& name) const;
  /// The deterministic subset, for bit-identical-across-threads comparisons.
  [[nodiscard]] std::vector<MetricSample> Deterministic() const;
  /// Compact `name=value name2=p50/p95` rendering for log lines.
  [[nodiscard]] std::string OneLine() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Insertion-ordered registry. Get* returns the existing instrument when the
/// name is already registered (the kind must match — SDN_CHECK otherwise).
/// Instruments are stable pointers for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, bool deterministic = true);
  Gauge* GetGauge(const std::string& name, bool deterministic = true);
  Histogram* GetHistogram(const std::string& name, bool deterministic = true);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    bool deterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindEntry(const std::string& name);

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace sdn::obs
