// Flight recorder: lock-free per-lane ring buffers of typed round events.
//
// The engine (and any harness) emits Events into lanes; each lane is a
// fixed-capacity single-writer ring, so emission is a bounded store with no
// locks, no allocation, and no syscalls — cheap enough to leave wired into
// Engine::Step. The sink is *off by default*: every emission site is gated
// on a null recorder pointer (the SDN_VERIFY_SORTED pattern applied to
// tracing), so a run without a recorder pays one predicted branch per phase
// and nothing else. Determinism tests pin that RunStats are bit-identical
// with the recorder attached or not.
//
// When a ring fills, the oldest events are overwritten (flight-recorder
// semantics: the most recent window of the run survives); the per-lane drop
// count is reported so a truncated trace is never mistaken for a complete
// one.
//
// Drain() merges the lanes chronologically; WriteJsonl / WriteChromeTrace
// export the merged stream — the latter in the Chrome trace-event format
// that chrome://tracing and Perfetto load directly, with engine phases,
// an algorithm-phase track, probe instants, and counter tracks
// (docs/OBSERVABILITY.md documents both schemas).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace sdn::obs {

struct RunManifest;

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultLaneCapacity = std::size_t{1} << 16;

  /// `lanes` independent single-writer rings of `lane_capacity` events each.
  /// The epoch (t = 0) is the moment of construction.
  explicit FlightRecorder(int lanes = 1,
                          std::size_t lane_capacity = kDefaultLaneCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] int lanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] std::size_t lane_capacity() const { return capacity_; }

  /// Nanoseconds since the recorder epoch (for stamping Event::t_ns).
  [[nodiscard]] std::int64_t NowNs() const {
    return RelNs(std::chrono::steady_clock::now());
  }
  [[nodiscard]] std::int64_t RelNs(
      std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
        .count();
  }

  /// Appends to lane 0. Single writer per lane: two threads may emit
  /// concurrently only into *different* lanes.
  void Emit(const Event& e) { EmitLane(0, e); }
  /// Appends to `lane` (stamps Event::lane). Out-of-range lanes clamp to 0.
  void EmitLane(int lane, Event e);

  /// Events emitted / overwritten-by-wraparound across all lanes.
  [[nodiscard]] std::uint64_t total_emitted() const;
  [[nodiscard]] std::uint64_t dropped() const;
  /// Overwritten-by-wraparound count of one lane (0 for out-of-range
  /// lanes) — the per-lane drop gauges the engine mirrors into the metrics
  /// registry read this.
  [[nodiscard]] std::uint64_t dropped_lane(int lane) const;

  /// All retained events, merged across lanes in (t_ns, lane) order.
  [[nodiscard]] std::vector<Event> Drain() const;

  /// One JSON object per line: a `manifest` record first (when given), a
  /// `meta` record (event/drop counts), then one `event` record per event.
  void WriteJsonl(std::ostream& os, const RunManifest* manifest) const;
  /// False (and nothing written) if the file cannot be opened.
  bool WriteJsonl(const std::string& path,
                  const RunManifest* manifest = nullptr) const;

  /// Chrome trace-event JSON (`{"traceEvents": [...]}`), loadable in
  /// chrome://tracing and Perfetto: engine phases as complete ("X") spans on
  /// tid 0, the algorithm-phase track as spans on tid 1 (each kAlgoPhase
  /// transition lasting until the next), probe lifecycle as instants on
  /// tid 2, and sketch-merge / checker / bandwidth tracks as counter ("C")
  /// events. The manifest rides in `otherData`.
  void WriteChromeTrace(std::ostream& os, const RunManifest* manifest) const;
  bool WriteChromeTrace(const std::string& path,
                        const RunManifest* manifest = nullptr) const;

 private:
  struct Lane {
    std::vector<Event> ring;    // capacity_ slots, written modulo capacity_
    std::uint64_t emitted = 0;  // total Emit calls into this lane
  };

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::vector<Lane> lanes_;
};

}  // namespace sdn::obs
