# Empty dependencies file for live_watch.
# This may be replaced when dependencies are built.
