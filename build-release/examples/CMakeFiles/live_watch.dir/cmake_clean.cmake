file(REMOVE_RECURSE
  "CMakeFiles/live_watch.dir/live_watch.cpp.o"
  "CMakeFiles/live_watch.dir/live_watch.cpp.o.d"
  "live_watch"
  "live_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
