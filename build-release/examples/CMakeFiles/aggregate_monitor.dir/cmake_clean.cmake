file(REMOVE_RECURSE
  "CMakeFiles/aggregate_monitor.dir/aggregate_monitor.cpp.o"
  "CMakeFiles/aggregate_monitor.dir/aggregate_monitor.cpp.o.d"
  "aggregate_monitor"
  "aggregate_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
