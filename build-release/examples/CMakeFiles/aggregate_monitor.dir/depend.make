# Empty dependencies file for aggregate_monitor.
# This may be replaced when dependencies are built.
