# Empty dependencies file for adversary_playground.
# This may be replaced when dependencies are built.
