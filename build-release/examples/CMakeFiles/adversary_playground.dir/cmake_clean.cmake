file(REMOVE_RECURSE
  "CMakeFiles/adversary_playground.dir/adversary_playground.cpp.o"
  "CMakeFiles/adversary_playground.dir/adversary_playground.cpp.o.d"
  "adversary_playground"
  "adversary_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
