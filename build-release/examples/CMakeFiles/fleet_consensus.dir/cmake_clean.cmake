file(REMOVE_RECURSE
  "CMakeFiles/fleet_consensus.dir/fleet_consensus.cpp.o"
  "CMakeFiles/fleet_consensus.dir/fleet_consensus.cpp.o.d"
  "fleet_consensus"
  "fleet_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
