# Empty dependencies file for fleet_consensus.
# This may be replaced when dependencies are built.
