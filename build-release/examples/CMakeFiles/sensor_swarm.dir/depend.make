# Empty dependencies file for sensor_swarm.
# This may be replaced when dependencies are built.
