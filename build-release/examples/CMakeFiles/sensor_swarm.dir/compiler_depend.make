# Empty compiler generated dependencies file for sensor_swarm.
# This may be replaced when dependencies are built.
