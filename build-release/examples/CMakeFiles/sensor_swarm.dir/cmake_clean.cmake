file(REMOVE_RECURSE
  "CMakeFiles/sensor_swarm.dir/sensor_swarm.cpp.o"
  "CMakeFiles/sensor_swarm.dir/sensor_swarm.cpp.o.d"
  "sensor_swarm"
  "sensor_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
