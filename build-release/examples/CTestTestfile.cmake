# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-release/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-release/examples/quickstart" "--n=24" "--T=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_swarm "/root/repo/build-release/examples/sensor_swarm" "--drones=40")
set_tests_properties(example_sensor_swarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_consensus "/root/repo/build-release/examples/fleet_consensus" "--vehicles=32")
set_tests_properties(example_fleet_consensus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_playground "/root/repo/build-release/examples/adversary_playground" "--n=24" "--T=3" "--rounds=15")
set_tests_properties(example_adversary_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aggregate_monitor "/root/repo/build-release/examples/aggregate_monitor" "--servers=48")
set_tests_properties(example_aggregate_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_watch "/root/repo/build-release/examples/live_watch" "--n=32" "--every=50")
set_tests_properties(example_live_watch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
