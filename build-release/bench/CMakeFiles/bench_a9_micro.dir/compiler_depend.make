# Empty compiler generated dependencies file for bench_a9_micro.
# This may be replaced when dependencies are built.
