file(REMOVE_RECURSE
  "CMakeFiles/bench_a9_micro.dir/bench_a9_micro.cpp.o"
  "CMakeFiles/bench_a9_micro.dir/bench_a9_micro.cpp.o.d"
  "bench_a9_micro"
  "bench_a9_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
