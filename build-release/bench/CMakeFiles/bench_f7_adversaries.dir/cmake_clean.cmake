file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_adversaries.dir/bench_f7_adversaries.cpp.o"
  "CMakeFiles/bench_f7_adversaries.dir/bench_f7_adversaries.cpp.o.d"
  "bench_f7_adversaries"
  "bench_f7_adversaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_adversaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
