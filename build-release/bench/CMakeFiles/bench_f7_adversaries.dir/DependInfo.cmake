
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f7_adversaries.cpp" "bench/CMakeFiles/bench_f7_adversaries.dir/bench_f7_adversaries.cpp.o" "gcc" "bench/CMakeFiles/bench_f7_adversaries.dir/bench_f7_adversaries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/core/CMakeFiles/sdn_core.dir/DependInfo.cmake"
  "/root/repo/build-release/src/algo/CMakeFiles/sdn_algo.dir/DependInfo.cmake"
  "/root/repo/build-release/src/adversary/CMakeFiles/sdn_adversary.dir/DependInfo.cmake"
  "/root/repo/build-release/src/net/CMakeFiles/sdn_net.dir/DependInfo.cmake"
  "/root/repo/build-release/src/graph/CMakeFiles/sdn_graph.dir/DependInfo.cmake"
  "/root/repo/build-release/src/util/CMakeFiles/sdn_util.dir/DependInfo.cmake"
  "/root/repo/build-release/src/obs/CMakeFiles/sdn_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
