# Empty dependencies file for bench_f7_adversaries.
# This may be replaced when dependencies are built.
