file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_crossover.dir/bench_f5_crossover.cpp.o"
  "CMakeFiles/bench_f5_crossover.dir/bench_f5_crossover.cpp.o.d"
  "bench_f5_crossover"
  "bench_f5_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
