# Empty dependencies file for bench_f5_crossover.
# This may be replaced when dependencies are built.
