# Empty compiler generated dependencies file for bench_t1_count_vs_n.
# This may be replaced when dependencies are built.
