# Empty dependencies file for bench_a8_ablation.
# This may be replaced when dependencies are built.
