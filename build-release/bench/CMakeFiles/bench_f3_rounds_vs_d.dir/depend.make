# Empty dependencies file for bench_f3_rounds_vs_d.
# This may be replaced when dependencies are built.
