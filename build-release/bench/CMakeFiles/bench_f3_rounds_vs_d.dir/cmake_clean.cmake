file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_rounds_vs_d.dir/bench_f3_rounds_vs_d.cpp.o"
  "CMakeFiles/bench_f3_rounds_vs_d.dir/bench_f3_rounds_vs_d.cpp.o.d"
  "bench_f3_rounds_vs_d"
  "bench_f3_rounds_vs_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_rounds_vs_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
