# Empty compiler generated dependencies file for bench_f2_count_vs_t.
# This may be replaced when dependencies are built.
