file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_count_vs_t.dir/bench_f2_count_vs_t.cpp.o"
  "CMakeFiles/bench_f2_count_vs_t.dir/bench_f2_count_vs_t.cpp.o.d"
  "bench_f2_count_vs_t"
  "bench_f2_count_vs_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_count_vs_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
