# Empty dependencies file for bench_t4_max_consensus.
# This may be replaced when dependencies are built.
