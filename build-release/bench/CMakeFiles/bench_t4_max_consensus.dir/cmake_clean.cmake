file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_max_consensus.dir/bench_t4_max_consensus.cpp.o"
  "CMakeFiles/bench_t4_max_consensus.dir/bench_t4_max_consensus.cpp.o.d"
  "bench_t4_max_consensus"
  "bench_t4_max_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_max_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
