# Empty dependencies file for bench_t6_bandwidth.
# This may be replaced when dependencies are built.
