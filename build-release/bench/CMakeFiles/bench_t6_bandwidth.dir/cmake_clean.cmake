file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_bandwidth.dir/bench_t6_bandwidth.cpp.o"
  "CMakeFiles/bench_t6_bandwidth.dir/bench_t6_bandwidth.cpp.o.d"
  "bench_t6_bandwidth"
  "bench_t6_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
