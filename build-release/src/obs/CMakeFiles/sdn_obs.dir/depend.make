# Empty dependencies file for sdn_obs.
# This may be replaced when dependencies are built.
