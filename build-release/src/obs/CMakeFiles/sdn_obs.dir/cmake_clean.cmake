file(REMOVE_RECURSE
  "CMakeFiles/sdn_obs.dir/manifest.cpp.o"
  "CMakeFiles/sdn_obs.dir/manifest.cpp.o.d"
  "CMakeFiles/sdn_obs.dir/recorder.cpp.o"
  "CMakeFiles/sdn_obs.dir/recorder.cpp.o.d"
  "CMakeFiles/sdn_obs.dir/registry.cpp.o"
  "CMakeFiles/sdn_obs.dir/registry.cpp.o.d"
  "libsdn_obs.a"
  "libsdn_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
