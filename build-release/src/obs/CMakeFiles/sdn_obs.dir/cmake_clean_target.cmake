file(REMOVE_RECURSE
  "libsdn_obs.a"
)
