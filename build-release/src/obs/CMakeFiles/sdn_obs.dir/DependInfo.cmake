
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/manifest.cpp" "src/obs/CMakeFiles/sdn_obs.dir/manifest.cpp.o" "gcc" "src/obs/CMakeFiles/sdn_obs.dir/manifest.cpp.o.d"
  "/root/repo/src/obs/recorder.cpp" "src/obs/CMakeFiles/sdn_obs.dir/recorder.cpp.o" "gcc" "src/obs/CMakeFiles/sdn_obs.dir/recorder.cpp.o.d"
  "/root/repo/src/obs/registry.cpp" "src/obs/CMakeFiles/sdn_obs.dir/registry.cpp.o" "gcc" "src/obs/CMakeFiles/sdn_obs.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/util/CMakeFiles/sdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
