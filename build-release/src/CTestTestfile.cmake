# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-release/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("graph")
subdirs("net")
subdirs("adversary")
subdirs("algo")
subdirs("core")
