
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/census.cpp" "src/algo/CMakeFiles/sdn_algo.dir/census.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/census.cpp.o.d"
  "/root/repo/src/algo/codecs.cpp" "src/algo/CMakeFiles/sdn_algo.dir/codecs.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/codecs.cpp.o.d"
  "/root/repo/src/algo/common.cpp" "src/algo/CMakeFiles/sdn_algo.dir/common.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/common.cpp.o.d"
  "/root/repo/src/algo/estimator.cpp" "src/algo/CMakeFiles/sdn_algo.dir/estimator.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/estimator.cpp.o.d"
  "/root/repo/src/algo/flood_max.cpp" "src/algo/CMakeFiles/sdn_algo.dir/flood_max.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/flood_max.cpp.o.d"
  "/root/repo/src/algo/hjswy.cpp" "src/algo/CMakeFiles/sdn_algo.dir/hjswy.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/hjswy.cpp.o.d"
  "/root/repo/src/algo/idset.cpp" "src/algo/CMakeFiles/sdn_algo.dir/idset.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/idset.cpp.o.d"
  "/root/repo/src/algo/kernels.cpp" "src/algo/CMakeFiles/sdn_algo.dir/kernels.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/kernels.cpp.o.d"
  "/root/repo/src/algo/klo_committee.cpp" "src/algo/CMakeFiles/sdn_algo.dir/klo_committee.cpp.o" "gcc" "src/algo/CMakeFiles/sdn_algo.dir/klo_committee.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/net/CMakeFiles/sdn_net.dir/DependInfo.cmake"
  "/root/repo/build-release/src/graph/CMakeFiles/sdn_graph.dir/DependInfo.cmake"
  "/root/repo/build-release/src/util/CMakeFiles/sdn_util.dir/DependInfo.cmake"
  "/root/repo/build-release/src/obs/CMakeFiles/sdn_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
