file(REMOVE_RECURSE
  "CMakeFiles/sdn_algo.dir/census.cpp.o"
  "CMakeFiles/sdn_algo.dir/census.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/codecs.cpp.o"
  "CMakeFiles/sdn_algo.dir/codecs.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/common.cpp.o"
  "CMakeFiles/sdn_algo.dir/common.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/estimator.cpp.o"
  "CMakeFiles/sdn_algo.dir/estimator.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/flood_max.cpp.o"
  "CMakeFiles/sdn_algo.dir/flood_max.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/hjswy.cpp.o"
  "CMakeFiles/sdn_algo.dir/hjswy.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/idset.cpp.o"
  "CMakeFiles/sdn_algo.dir/idset.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/kernels.cpp.o"
  "CMakeFiles/sdn_algo.dir/kernels.cpp.o.d"
  "CMakeFiles/sdn_algo.dir/klo_committee.cpp.o"
  "CMakeFiles/sdn_algo.dir/klo_committee.cpp.o.d"
  "libsdn_algo.a"
  "libsdn_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
