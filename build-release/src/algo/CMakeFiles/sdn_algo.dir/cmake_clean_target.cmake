file(REMOVE_RECURSE
  "libsdn_algo.a"
)
