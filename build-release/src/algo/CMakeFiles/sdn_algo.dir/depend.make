# Empty dependencies file for sdn_algo.
# This may be replaced when dependencies are built.
