# Empty dependencies file for sdn_adversary.
# This may be replaced when dependencies are built.
