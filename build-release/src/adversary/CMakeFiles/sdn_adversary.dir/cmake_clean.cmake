file(REMOVE_RECURSE
  "CMakeFiles/sdn_adversary.dir/adaptive.cpp.o"
  "CMakeFiles/sdn_adversary.dir/adaptive.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/factory.cpp.o"
  "CMakeFiles/sdn_adversary.dir/factory.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/mobile.cpp.o"
  "CMakeFiles/sdn_adversary.dir/mobile.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/replay.cpp.o"
  "CMakeFiles/sdn_adversary.dir/replay.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/spine.cpp.o"
  "CMakeFiles/sdn_adversary.dir/spine.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/stable_spine.cpp.o"
  "CMakeFiles/sdn_adversary.dir/stable_spine.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/static_adversary.cpp.o"
  "CMakeFiles/sdn_adversary.dir/static_adversary.cpp.o.d"
  "CMakeFiles/sdn_adversary.dir/streaming_trace.cpp.o"
  "CMakeFiles/sdn_adversary.dir/streaming_trace.cpp.o.d"
  "libsdn_adversary.a"
  "libsdn_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
