
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/adaptive.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/adaptive.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/adaptive.cpp.o.d"
  "/root/repo/src/adversary/factory.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/factory.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/factory.cpp.o.d"
  "/root/repo/src/adversary/mobile.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/mobile.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/mobile.cpp.o.d"
  "/root/repo/src/adversary/replay.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/replay.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/replay.cpp.o.d"
  "/root/repo/src/adversary/spine.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/spine.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/spine.cpp.o.d"
  "/root/repo/src/adversary/stable_spine.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/stable_spine.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/stable_spine.cpp.o.d"
  "/root/repo/src/adversary/static_adversary.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/static_adversary.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/static_adversary.cpp.o.d"
  "/root/repo/src/adversary/streaming_trace.cpp" "src/adversary/CMakeFiles/sdn_adversary.dir/streaming_trace.cpp.o" "gcc" "src/adversary/CMakeFiles/sdn_adversary.dir/streaming_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/net/CMakeFiles/sdn_net.dir/DependInfo.cmake"
  "/root/repo/build-release/src/graph/CMakeFiles/sdn_graph.dir/DependInfo.cmake"
  "/root/repo/build-release/src/util/CMakeFiles/sdn_util.dir/DependInfo.cmake"
  "/root/repo/build-release/src/obs/CMakeFiles/sdn_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
