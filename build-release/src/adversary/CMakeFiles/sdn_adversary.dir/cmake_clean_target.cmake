file(REMOVE_RECURSE
  "libsdn_adversary.a"
)
