file(REMOVE_RECURSE
  "CMakeFiles/sdn_graph.dir/algorithms.cpp.o"
  "CMakeFiles/sdn_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/sdn_graph.dir/delta.cpp.o"
  "CMakeFiles/sdn_graph.dir/delta.cpp.o.d"
  "CMakeFiles/sdn_graph.dir/generators.cpp.o"
  "CMakeFiles/sdn_graph.dir/generators.cpp.o.d"
  "CMakeFiles/sdn_graph.dir/graph.cpp.o"
  "CMakeFiles/sdn_graph.dir/graph.cpp.o.d"
  "CMakeFiles/sdn_graph.dir/tinterval.cpp.o"
  "CMakeFiles/sdn_graph.dir/tinterval.cpp.o.d"
  "libsdn_graph.a"
  "libsdn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
