file(REMOVE_RECURSE
  "libsdn_graph.a"
)
