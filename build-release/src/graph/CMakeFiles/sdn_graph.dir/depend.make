# Empty dependencies file for sdn_graph.
# This may be replaced when dependencies are built.
