file(REMOVE_RECURSE
  "libsdn_util.a"
)
