# Empty dependencies file for sdn_util.
# This may be replaced when dependencies are built.
