file(REMOVE_RECURSE
  "CMakeFiles/sdn_util.dir/bitio.cpp.o"
  "CMakeFiles/sdn_util.dir/bitio.cpp.o.d"
  "CMakeFiles/sdn_util.dir/flags.cpp.o"
  "CMakeFiles/sdn_util.dir/flags.cpp.o.d"
  "CMakeFiles/sdn_util.dir/log.cpp.o"
  "CMakeFiles/sdn_util.dir/log.cpp.o.d"
  "CMakeFiles/sdn_util.dir/rng.cpp.o"
  "CMakeFiles/sdn_util.dir/rng.cpp.o.d"
  "CMakeFiles/sdn_util.dir/stats.cpp.o"
  "CMakeFiles/sdn_util.dir/stats.cpp.o.d"
  "CMakeFiles/sdn_util.dir/table.cpp.o"
  "CMakeFiles/sdn_util.dir/table.cpp.o.d"
  "CMakeFiles/sdn_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sdn_util.dir/thread_pool.cpp.o.d"
  "libsdn_util.a"
  "libsdn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
