file(REMOVE_RECURSE
  "libsdn_net.a"
)
