
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/adversary.cpp" "src/net/CMakeFiles/sdn_net.dir/adversary.cpp.o" "gcc" "src/net/CMakeFiles/sdn_net.dir/adversary.cpp.o.d"
  "/root/repo/src/net/bandwidth.cpp" "src/net/CMakeFiles/sdn_net.dir/bandwidth.cpp.o" "gcc" "src/net/CMakeFiles/sdn_net.dir/bandwidth.cpp.o.d"
  "/root/repo/src/net/flooding.cpp" "src/net/CMakeFiles/sdn_net.dir/flooding.cpp.o" "gcc" "src/net/CMakeFiles/sdn_net.dir/flooding.cpp.o.d"
  "/root/repo/src/net/metrics.cpp" "src/net/CMakeFiles/sdn_net.dir/metrics.cpp.o" "gcc" "src/net/CMakeFiles/sdn_net.dir/metrics.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/sdn_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/sdn_net.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/graph/CMakeFiles/sdn_graph.dir/DependInfo.cmake"
  "/root/repo/build-release/src/obs/CMakeFiles/sdn_obs.dir/DependInfo.cmake"
  "/root/repo/build-release/src/util/CMakeFiles/sdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
