file(REMOVE_RECURSE
  "CMakeFiles/sdn_net.dir/adversary.cpp.o"
  "CMakeFiles/sdn_net.dir/adversary.cpp.o.d"
  "CMakeFiles/sdn_net.dir/bandwidth.cpp.o"
  "CMakeFiles/sdn_net.dir/bandwidth.cpp.o.d"
  "CMakeFiles/sdn_net.dir/flooding.cpp.o"
  "CMakeFiles/sdn_net.dir/flooding.cpp.o.d"
  "CMakeFiles/sdn_net.dir/metrics.cpp.o"
  "CMakeFiles/sdn_net.dir/metrics.cpp.o.d"
  "CMakeFiles/sdn_net.dir/trace.cpp.o"
  "CMakeFiles/sdn_net.dir/trace.cpp.o.d"
  "libsdn_net.a"
  "libsdn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
