# Empty dependencies file for sdn_net.
# This may be replaced when dependencies are built.
