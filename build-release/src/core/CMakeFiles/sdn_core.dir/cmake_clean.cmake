file(REMOVE_RECURSE
  "CMakeFiles/sdn_core.dir/api.cpp.o"
  "CMakeFiles/sdn_core.dir/api.cpp.o.d"
  "libsdn_core.a"
  "libsdn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
