file(REMOVE_RECURSE
  "libsdn_core.a"
)
