# Empty dependencies file for sdn_core.
# This may be replaced when dependencies are built.
