# Empty compiler generated dependencies file for test_codecs.
# This may be replaced when dependencies are built.
