file(REMOVE_RECURSE
  "CMakeFiles/test_codecs.dir/test_codecs.cpp.o"
  "CMakeFiles/test_codecs.dir/test_codecs.cpp.o.d"
  "test_codecs"
  "test_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
