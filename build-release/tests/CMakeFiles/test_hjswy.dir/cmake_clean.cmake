file(REMOVE_RECURSE
  "CMakeFiles/test_hjswy.dir/test_hjswy.cpp.o"
  "CMakeFiles/test_hjswy.dir/test_hjswy.cpp.o.d"
  "test_hjswy"
  "test_hjswy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hjswy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
