# Empty compiler generated dependencies file for test_hjswy.
# This may be replaced when dependencies are built.
