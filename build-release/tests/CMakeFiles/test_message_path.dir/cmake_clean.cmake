file(REMOVE_RECURSE
  "CMakeFiles/test_message_path.dir/test_message_path.cpp.o"
  "CMakeFiles/test_message_path.dir/test_message_path.cpp.o.d"
  "test_message_path"
  "test_message_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
