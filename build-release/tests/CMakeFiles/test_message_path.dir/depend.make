# Empty dependencies file for test_message_path.
# This may be replaced when dependencies are built.
