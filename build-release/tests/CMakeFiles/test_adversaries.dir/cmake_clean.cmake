file(REMOVE_RECURSE
  "CMakeFiles/test_adversaries.dir/test_adversaries.cpp.o"
  "CMakeFiles/test_adversaries.dir/test_adversaries.cpp.o.d"
  "test_adversaries"
  "test_adversaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adversaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
