# Empty compiler generated dependencies file for test_adversaries.
# This may be replaced when dependencies are built.
