file(REMOVE_RECURSE
  "CMakeFiles/test_flood_algos.dir/test_flood_algos.cpp.o"
  "CMakeFiles/test_flood_algos.dir/test_flood_algos.cpp.o.d"
  "test_flood_algos"
  "test_flood_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flood_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
