# Empty dependencies file for test_klo_committee.
# This may be replaced when dependencies are built.
