file(REMOVE_RECURSE
  "CMakeFiles/test_klo_committee.dir/test_klo_committee.cpp.o"
  "CMakeFiles/test_klo_committee.dir/test_klo_committee.cpp.o.d"
  "test_klo_committee"
  "test_klo_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_klo_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
