file(REMOVE_RECURSE
  "CMakeFiles/test_idset.dir/test_idset.cpp.o"
  "CMakeFiles/test_idset.dir/test_idset.cpp.o.d"
  "test_idset"
  "test_idset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
