# Empty compiler generated dependencies file for test_idset.
# This may be replaced when dependencies are built.
