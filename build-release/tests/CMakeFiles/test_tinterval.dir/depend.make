# Empty dependencies file for test_tinterval.
# This may be replaced when dependencies are built.
