file(REMOVE_RECURSE
  "CMakeFiles/test_tinterval.dir/test_tinterval.cpp.o"
  "CMakeFiles/test_tinterval.dir/test_tinterval.cpp.o.d"
  "test_tinterval"
  "test_tinterval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tinterval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
