# Empty dependencies file for test_spine.
# This may be replaced when dependencies are built.
