file(REMOVE_RECURSE
  "CMakeFiles/test_spine.dir/test_spine.cpp.o"
  "CMakeFiles/test_spine.dir/test_spine.cpp.o.d"
  "test_spine"
  "test_spine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
