file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth_metrics.dir/test_bandwidth_metrics.cpp.o"
  "CMakeFiles/test_bandwidth_metrics.dir/test_bandwidth_metrics.cpp.o.d"
  "test_bandwidth_metrics"
  "test_bandwidth_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
