# Empty dependencies file for test_bandwidth_metrics.
# This may be replaced when dependencies are built.
